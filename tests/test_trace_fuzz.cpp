// Property/fuzz tests for the packed trace codec and its file
// round-trip: randomized reference streams survive
// ChunkedTrace -> FileTraceSink -> file -> load_chunked_trace
// bit-for-bit (across chunk boundaries and the busy filter), the
// loader's generation-time metadata replaces the pes_in_trace rescan,
// and truncated/corrupted inputs fail cleanly with Error — they must
// never reach the per-class counters, whose tables an out-of-range
// object class would index out of bounds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "test_rand.h"
#include "trace/chunks.h"
#include "trace/tracebuf.h"

namespace rapwam {
namespace {

/// Fully random — but valid — packed references over the whole field
/// space: 40-bit addresses, all PEs, all classes, both flags.
std::vector<u64> fuzz_refs(u64 seed, std::size_t n) {
  Lcg rng(seed);
  std::vector<u64> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemRef r;
    r.addr = (rng.next() << 20 | rng.next()) & 0xFFFFFFFFFFull;
    r.pe = static_cast<u8>(rng.next(64));
    r.cls = static_cast<ObjClass>(rng.next(kObjClassCount));
    r.write = rng.next(2) != 0;
    r.busy = rng.next(4) != 0;
    out.push_back(r.pack());
  }
  return out;
}

/// Unique temp file path, removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag)
      : path((std::filesystem::temp_directory_path() /
              ("rapwam_fuzz_" + tag + "_" +
               std::to_string(::getpid())))
                 .string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

void write_raw(const std::string& path, const void* data, std::size_t bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (bytes) ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(TraceFuzz, PackUnpackRoundTripsEveryField) {
  for (u64 p : fuzz_refs(0x5EED, 50000)) {
    MemRef r = MemRef::unpack(p);
    EXPECT_EQ(r.pack(), p);
    EXPECT_TRUE(packed_ref_valid(p));
  }
}

TEST(TraceFuzz, FileRoundTripAcrossChunkBoundaries) {
  // Sizes straddling the kChunkRefs boundary, so the sink's chunking
  // and the loader's re-chunking are both exercised, plus empty.
  const std::size_t sizes[] = {0, 1, 1000, kChunkRefs - 1, kChunkRefs,
                               kChunkRefs + 1, kChunkRefs * 2 + 17};
  for (std::size_t n : sizes) {
    std::vector<u64> refs = fuzz_refs(0xF00D + n, n);
    TempFile tmp("roundtrip_" + std::to_string(n));
    {
      FileTraceSink sink(tmp.path, /*busy_only=*/false);
      // Deliver in uneven slices to decouple sink chunking from the
      // caller's chunking.
      std::size_t i = 0, step = 1;
      while (i < refs.size()) {
        std::size_t k = std::min(step, refs.size() - i);
        sink.on_chunk(refs.data() + i, k);
        i += k;
        step = step * 3 + 1;
      }
      sink.close();
      EXPECT_EQ(sink.written(), refs.size()) << n;
    }
    std::shared_ptr<const ChunkedTrace> t = load_chunked_trace(tmp.path);
    EXPECT_EQ(t->to_packed(), refs) << n;
    EXPECT_EQ(t->counts().total, refs.size()) << n;
  }
}

TEST(TraceFuzz, BusyFilterMatchesTraceBufferSemantics) {
  std::vector<u64> refs = fuzz_refs(0xB551, 30000);
  // What a busy-only TraceBuffer retains is the reference stream the
  // cache simulators consume; the file pipeline must agree.
  TraceBuffer buf(/*busy_only=*/true);
  buf.on_chunk(refs.data(), refs.size());

  TempFile tmp("busy");
  {
    FileTraceSink sink(tmp.path, /*busy_only=*/true);
    sink.on_chunk(refs.data(), refs.size());
    sink.close();
  }
  std::shared_ptr<const ChunkedTrace> t = load_chunked_trace(tmp.path);
  EXPECT_EQ(t->to_packed(), buf.packed());
  // The recorded file holds only busy refs, so a second busy filter at
  // load is a no-op.
  std::shared_ptr<const ChunkedTrace> t2 =
      load_chunked_trace(tmp.path, /*busy_only=*/true);
  EXPECT_EQ(t2->to_packed(), buf.packed());
}

TEST(TraceFuzz, LoaderMetadataReplacesPesRescan) {
  // Regression for the metadata-less-file path: the PE span is built
  // once at load (validated counts), not rescanned per consumer via
  // pes_in_trace.
  for (unsigned pes : {1u, 3u, 17u, 64u}) {
    Lcg rng(pes);
    std::vector<u64> refs;
    for (std::size_t i = 0; i < 5000; ++i) {
      MemRef r;
      r.addr = rng.next(1 << 20);
      r.pe = static_cast<u8>(rng.next(pes));
      r.busy = true;
      refs.push_back(r.pack());
    }
    // Force the top PE to appear so the span is exact.
    MemRef top;
    top.pe = static_cast<u8>(pes - 1);
    top.busy = true;
    refs.push_back(top.pack());

    TempFile tmp("pes_" + std::to_string(pes));
    write_raw(tmp.path, refs.data(), refs.size() * 8);
    std::shared_ptr<const ChunkedTrace> t = load_chunked_trace(tmp.path);
    EXPECT_EQ(t->num_pes(), pes);
    EXPECT_EQ(t->num_pes(), pes_in_trace(t->to_packed()));  // same answer
    EXPECT_EQ(t->counts().total, refs.size());
  }
}

// --- malformed inputs ------------------------------------------------------

TEST(TraceFuzz, TruncatedFileFailsCleanly) {
  std::vector<u64> refs = fuzz_refs(0x7077, 100);
  for (std::size_t cut : {1u, 3u, 7u}) {
    TempFile tmp("trunc_" + std::to_string(cut));
    write_raw(tmp.path, refs.data(), refs.size() * 8 - cut);
    EXPECT_THROW(load_trace(tmp.path), Error) << cut;
    EXPECT_THROW(load_chunked_trace(tmp.path), Error) << cut;
  }
}

TEST(TraceFuzz, MissingFileFailsCleanly) {
  EXPECT_THROW(load_chunked_trace("/nonexistent/rapwam_no_such.trc"), Error);
}

TEST(TraceFuzz, CorruptedRecordsAreRejectedBeforeAnyCounting) {
  std::vector<u64> refs = fuzz_refs(0xC0DE, 500);
  struct Corruption {
    const char* what;
    u64 (*mangle)(u64);
  } corruptions[] = {
      // Garbage above the packed fields (the usual smashed-header shape).
      {"high bits", [](u64 v) { return v | (u64(1) << 63); }},
      {"byte shift", [](u64 v) { return v << 8 | 0xFF; }},
      // An object class past Table 1's twelve rows: exactly the word
      // that would index traits_of() out of bounds if it got through.
      {"class 15", [](u64 v) { return (v & ~(u64(0xF) << 48)) | (u64(15) << 48); }},
      {"class 12", [](u64 v) { return (v & ~(u64(0xF) << 48)) | (u64(12) << 48); }},
  };
  for (const Corruption& c : corruptions) {
    for (std::size_t at : {std::size_t(0), refs.size() / 2, refs.size() - 1}) {
      std::vector<u64> bad = refs;
      bad[at] = c.mangle(bad[at]);
      TempFile tmp("corrupt");
      write_raw(tmp.path, bad.data(), bad.size() * 8);
      EXPECT_THROW(load_chunked_trace(tmp.path), Error)
          << c.what << " at " << at;
    }
  }
}

TEST(TraceFuzz, RandomGarbageFileFailsCleanly) {
  // 4 KB of raw LCG output: bits 54..63 are essentially never all
  // clear, so validation must reject it (and must not crash first).
  Lcg rng(0xDEAD);
  std::vector<u64> junk;
  for (int i = 0; i < 512; ++i) junk.push_back(rng.next() | (u64(1) << 60));
  TempFile tmp("garbage");
  write_raw(tmp.path, junk.data(), junk.size() * 8);
  EXPECT_THROW(load_chunked_trace(tmp.path), Error);
}

}  // namespace
}  // namespace rapwam
