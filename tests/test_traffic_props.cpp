#include <map>
// Property tests on real emulator traces: parameterized sweeps over
// protocols and cache sizes checking coherence invariants, LRU
// inclusion (miss ratio monotone in cache size), determinism, and the
// qualitative protocol ordering the paper reports (write-through worst,
// broadcast best, hybrid in between).
#include <gtest/gtest.h>

#include "cache/multisim.h"
#include "harness/runner.h"

namespace rapwam {
namespace {

/// One shared trace per PE count (expensive to produce, reused).
const std::vector<u64>& qsort_trace(unsigned pes) {
  static std::map<unsigned, std::vector<u64>> cache_;
  auto it = cache_.find(pes);
  if (it != cache_.end()) return it->second;
  BenchRun r = run_parallel(bench_program("qsort", BenchScale::Small), pes,
                            /*want_trace=*/true);
  return cache_.emplace(pes, r.trace->packed()).first->second;
}

double ratio(Protocol p, u32 size, unsigned pes, bool walloc) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size;
  cfg.line_words = 4;
  cfg.write_allocate = walloc;
  MultiCacheSim sim(cfg, pes);
  sim.replay(qsort_trace(pes));
  EXPECT_TRUE(sim.invariants_ok()) << protocol_name(p) << " " << size;
  return sim.stats().traffic_ratio();
}

double missr(Protocol p, u32 size, unsigned pes) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  MultiCacheSim sim(cfg, pes);
  sim.replay(qsort_trace(pes));
  return sim.stats().miss_ratio();
}

struct Param {
  Protocol proto;
  u32 size;
  unsigned pes;
};

class ProtocolSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ProtocolSweep, InvariantsHoldOnRealTraces) {
  const Param& p = GetParam();
  CacheConfig cfg;
  cfg.protocol = p.proto;
  cfg.size_words = p.size;
  cfg.line_words = 4;
  cfg.write_allocate = paper_write_allocate(p.proto, p.size);
  MultiCacheSim sim(cfg, p.pes);
  sim.replay(qsort_trace(p.pes));
  EXPECT_TRUE(sim.invariants_ok());
  EXPECT_GT(sim.stats().refs, 0u);
  EXPECT_GT(sim.stats().bus_words, 0u);
}

TEST_P(ProtocolSweep, ReplayIsDeterministic) {
  const Param& p = GetParam();
  CacheConfig cfg;
  cfg.protocol = p.proto;
  cfg.size_words = p.size;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  MultiCacheSim a(cfg, p.pes), b(cfg, p.pes);
  a.replay(qsort_trace(p.pes));
  b.replay(qsort_trace(p.pes));
  EXPECT_EQ(a.stats().bus_words, b.stats().bus_words);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsSizesPes, ProtocolSweep,
    ::testing::Values(
        Param{Protocol::WriteThrough, 64, 1}, Param{Protocol::WriteThrough, 512, 4},
        Param{Protocol::WriteInBroadcast, 64, 1},
        Param{Protocol::WriteInBroadcast, 256, 2},
        Param{Protocol::WriteInBroadcast, 1024, 4},
        Param{Protocol::WriteThroughBroadcast, 256, 4},
        Param{Protocol::WriteThroughBroadcast, 1024, 2},
        Param{Protocol::Hybrid, 64, 1}, Param{Protocol::Hybrid, 512, 2},
        Param{Protocol::Hybrid, 1024, 4}, Param{Protocol::Copyback, 512, 1},
        Param{Protocol::Copyback, 1024, 1}));

class SizeMonotone : public ::testing::TestWithParam<Protocol> {};

TEST_P(SizeMonotone, MissRatioNonIncreasingWithCacheSize) {
  // Fully associative LRU with a fixed line size has the inclusion
  // property: a bigger cache never misses more.
  Protocol p = GetParam();
  double prev = 1e9;
  for (u32 sz : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    double m = missr(p, sz, 2);
    EXPECT_LE(m, prev + 1e-12) << protocol_name(p) << " at " << sz;
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SizeMonotone,
                         ::testing::Values(Protocol::WriteThrough,
                                           Protocol::WriteInBroadcast,
                                           Protocol::WriteThroughBroadcast,
                                           Protocol::Hybrid, Protocol::Copyback));

TEST(ProtocolOrdering, PaperFigure4Shape) {
  // At moderate-to-large sizes the paper's ordering must hold:
  // write-through generates the most traffic, write-in broadcast the
  // least, hybrid in between (close to broadcast).
  for (unsigned pes : {2u, 4u}) {
    for (u32 sz : {512u, 1024u, 2048u}) {
      double wt = ratio(Protocol::WriteThrough, sz, pes,
                        paper_write_allocate(Protocol::WriteThrough, sz));
      double hy = ratio(Protocol::Hybrid, sz, pes,
                        paper_write_allocate(Protocol::Hybrid, sz));
      double bc = ratio(Protocol::WriteInBroadcast, sz, pes,
                        paper_write_allocate(Protocol::WriteInBroadcast, sz));
      EXPECT_GT(wt, hy) << pes << "PE " << sz << "w";
      EXPECT_GE(hy, bc * 0.98) << pes << "PE " << sz << "w";
    }
  }
}

TEST(ProtocolOrdering, BroadcastVariantsNearlyIdentical) {
  // Paper: "write-through broadcast statistics are almost identical to
  // those of the write-in broadcast cache".
  for (u32 sz : {256u, 1024u}) {
    double wi = ratio(Protocol::WriteInBroadcast, sz, 4, true);
    double wu = ratio(Protocol::WriteThroughBroadcast, sz, 4, true);
    EXPECT_NEAR(wi, wu, 0.05) << sz;
  }
}

TEST(ProtocolOrdering, HybridHasNoViolationsOnRealTraces) {
  // Table 1's locality attributes must be respected by the engine:
  // hybrid treats local-tagged lines as incoherent, so any cross-PE
  // access to them would corrupt data. The engine must never emit one.
  for (unsigned pes : {1u, 2u, 4u, 8u}) {
    CacheConfig cfg;
    cfg.protocol = Protocol::Hybrid;
    cfg.size_words = 512;
    cfg.line_words = 4;
    cfg.write_allocate = false;
    MultiCacheSim sim(cfg, pes);
    sim.replay(qsort_trace(pes));
    EXPECT_EQ(sim.stats().coherence_violations, 0u) << pes << " PEs";
  }
}

TEST(WriteAllocatePolicy, PaperSelectionRule) {
  EXPECT_FALSE(paper_write_allocate(Protocol::WriteInBroadcast, 64));
  EXPECT_FALSE(paper_write_allocate(Protocol::WriteInBroadcast, 256));
  EXPECT_TRUE(paper_write_allocate(Protocol::WriteInBroadcast, 512));
  EXPECT_FALSE(paper_write_allocate(Protocol::Hybrid, 512));
  EXPECT_TRUE(paper_write_allocate(Protocol::Hybrid, 1024));
}

TEST(WriteAllocatePolicy, NoAllocateBetterForSmallCaches) {
  // The paper's observation: no-write-allocate produces lower traffic
  // for small caches (but a higher miss ratio).
  double with_alloc = ratio(Protocol::WriteInBroadcast, 64, 2, true);
  double no_alloc = ratio(Protocol::WriteInBroadcast, 64, 2, false);
  EXPECT_LT(no_alloc, with_alloc);
}

TEST(TraceFile, SaveLoadRoundTrip) {
  const std::vector<u64>& t = qsort_trace(2);
  std::string path = ::testing::TempDir() + "/rapwam_trace.bin";
  save_trace(t, path);
  std::vector<u64> back = load_trace(path);
  EXPECT_EQ(back, t);
}

}  // namespace
}  // namespace rapwam
