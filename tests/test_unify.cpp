// Dedicated unification tests: binding direction safety, trailing,
// deep and wide terms, PDL behaviour, and unification across parallel
// heaps.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/machine.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  std::unique_ptr<Machine> m;
  explicit Env(const std::string& src = "eq(X, X).", unsigned pes = 1,
               unsigned max_sols = 1) {
    prog.consult(src);
    MachineConfig cfg;
    cfg.num_pes = pes;
    cfg.max_solutions = max_sols;
    m = std::make_unique<Machine>(prog, cfg);
  }
  RunResult run(const std::string& goal) { return m->solve(goal); }
};

std::string binding(const RunResult& r, const std::string& var) {
  for (auto& [n, v] : r.solutions.at(0).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

std::string deep_term(int depth) {
  std::string s = "leaf";
  for (int i = 0; i < depth; ++i) s = "n(" + s + ")";
  return s;
}

TEST(Unify, AtomsAndIntegers) {
  Env e;
  EXPECT_TRUE(e.run("eq(a, a).").success);
  EXPECT_FALSE(e.run("eq(a, b).").success);
  EXPECT_TRUE(e.run("eq(5, 5).").success);
  EXPECT_FALSE(e.run("eq(5, 6).").success);
  EXPECT_FALSE(e.run("eq(5, a).").success);
  EXPECT_FALSE(e.run("eq(5, f(5)).").success);
}

TEST(Unify, VarVarChains) {
  Env e;
  RunResult r = e.run("eq(A, B), eq(B, C), eq(C, 7).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "A"), "7");
  EXPECT_EQ(binding(r, "B"), "7");
  EXPECT_EQ(binding(r, "C"), "7");
}

TEST(Unify, StructuresRecursively) {
  Env e;
  EXPECT_TRUE(e.run("eq(f(g(1), h(2)), f(g(1), h(2))).").success);
  EXPECT_FALSE(e.run("eq(f(g(1), h(2)), f(g(1), h(3))).").success);
  EXPECT_FALSE(e.run("eq(f(1), f(1, 2)).").success);
  EXPECT_FALSE(e.run("eq(f(1), g(1)).").success);
}

TEST(Unify, PartialInstantiationBothDirections) {
  Env e;
  RunResult r = e.run("eq(f(X, 2), f(1, Y)).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
  EXPECT_EQ(binding(r, "Y"), "2");
}

TEST(Unify, SharedSubterms) {
  Env e;
  RunResult r = e.run("eq(f(X, X), f(g(Y), g(3))).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "g(3)");
  EXPECT_EQ(binding(r, "Y"), "3");
}

TEST(Unify, DisagreementDeepInside) {
  Env e;
  EXPECT_FALSE(e.run("eq(f(g(h(i(1)))), f(g(h(i(2))))).").success);
}

TEST(Unify, DeepTerms) {
  Env e;
  std::string t = deep_term(150);
  EXPECT_TRUE(e.run("eq(" + t + ", " + t + ").").success);
  // Same depth, different leaf.
  std::string t2 = deep_term(150);
  t2.replace(t2.find("leaf"), 4, "lief");
  EXPECT_FALSE(e.run("eq(" + t + ", " + t2 + ").").success);
}

TEST(Unify, WideTerms) {
  Env e;
  std::ostringstream a, b;
  a << "f(";
  b << "f(";
  for (int i = 0; i < 200; ++i) {
    if (i) { a << ","; b << ","; }
    a << i;
    b << i;
  }
  a << ")";
  b << ")";
  EXPECT_TRUE(e.run("eq(" + a.str() + ", " + b.str() + ").").success);
}

TEST(Unify, LongLists) {
  Env e;
  std::ostringstream l;
  l << "[";
  for (int i = 0; i < 500; ++i) {
    if (i) l << ",";
    l << i;
  }
  l << "]";
  EXPECT_TRUE(e.run("eq(" + l.str() + ", " + l.str() + ").").success);
  RunResult r = e.run("eq(" + l.str() + ", L).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "L").substr(0, 8), "[0,1,2,3");
}

TEST(Unify, PartialListsUnify) {
  Env e;
  RunResult r = e.run("eq([1,2|T], [1,2,3,4]).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "T"), "[3,4]");
}

TEST(Unify, FailureUndoesAllBindings) {
  // First clause binds deep into the term then fails at the end; the
  // retry must see pristine variables.
  Env e(
      "u(X, Y) :- X = f(1, 2, 3), Y = g(X), fail. "
      "u(X, Y) :- X = none, Y = none.");
  RunResult r = e.run("u(A, B).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "A"), "none");
  EXPECT_EQ(binding(r, "B"), "none");
}

TEST(Unify, TrailOnlyConditionalBindings) {
  // Bindings newer than the newest choice point need no trail entries;
  // a deterministic run should trail almost nothing.
  Env e("mk(f(A, B, C)) :- A = 1, B = 2, C = 3.");
  RunResult r = e.run("mk(T).");
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.stats.refs.by_area[static_cast<size_t>(Area::Trail)], 8u);
}

TEST(Unify, PdlHandlesWideStructures) {
  Env e;
  // Unifying two wide identical structures exercises the PDL.
  std::ostringstream t;
  t << "f(";
  for (int i = 0; i < 100; ++i) {
    if (i) t << ",";
    t << "g(" << i << ", h(" << i << "))";
  }
  t << ")";
  RunResult r = e.run("eq(" + t.str() + ", " + t.str() + ").");
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.refs.by_area[static_cast<size_t>(Area::Pdl)], 0u);
}

TEST(Unify, AcrossParallelHeaps) {
  // Results produced on different PEs' heaps unify with each other.
  const char* src =
      "go(R) :- mk(1, A) & mk(2, B), A = f(N1, T1), B = f(N2, T2), "
      "         T1 = T2, R is N1 + N2. "
      "mk(N, f(N, _)).";
  Env e(src, 4);
  RunResult r = e.run("go(R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "3");
}

TEST(Unify, OutputsBuiltOnDifferentPEsCompareEqual) {
  const char* src =
      "both(L) :- build(L1) & build(L2), L1 == L2, L = L1. "
      "build([a, f(1), [2, 3]]).";
  Env e(src, 2);
  RunResult r = e.run("both(L).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "L"), "[a,f(1),[2,3]]");
}

}  // namespace
}  // namespace rapwam
