// Bytecode-verifier suite (DESIGN.md §14): the static pass in
// compiler/verify.{h,cpp} must accept everything the compiler emits —
// all four paper benchmarks, fused and unfused — and reject every
// malformed CodeStore with a structured "verify:" Error before the
// first instruction could execute. Rule-by-rule unit tests forge
// stores by hand; the fuzz tests mutate real compiled programs
// (bit flips, truncation, opcode forgery) and require rejection, or —
// for arbitrary bit flips — at worst a clean pass, never UB or an
// unstructured crash (the ASan shard runs this suite for exactly that
// reason).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compile.h"
#include "compiler/fuse.h"
#include "compiler/verify.h"
#include "harness/programs.h"
#include "support/interner.h"
#include "test_rand.h"

namespace rapwam {
namespace {

std::unique_ptr<CodeStore> compile_bench(const std::string& name, bool fuse,
                                         BenchScale scale = BenchScale::Small) {
  BenchProgram bp = bench_program(name, scale);
  Program prog;
  prog.consult(bp.source);
  CompileOptions opts;
  opts.fuse = fuse;
  return compile_program(prog, opts);
}

/// Runs the verifier expecting a rejection whose message carries the
/// structured "verify:" prefix and the rule-specific `fragment`.
void expect_reject(const CodeStore& code, const std::string& fragment) {
  try {
    verify_code(code);
    FAIL() << "verifier accepted a store that should trip \"" << fragment
           << "\"";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("verify:"), std::string::npos) << msg;
    EXPECT_NE(msg.find(fragment), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Rule unit tests on hand-forged stores. The CodeStore constructor
// emits the reserved prelude (fail / end-goal / end-local-goal), so a
// fresh store plus one forged instruction is the minimal subject.

TEST(VerifierRules, AcceptsMinimalForgedProgram) {
  Interner atoms;
  CodeStore code(atoms);
  i32 p = code.proc_index(PredId{atoms.intern("q"), 0});
  code.proc(p).entry = code.emit({Op::PutNil, 0, 1, 0, 0});
  code.emit({Op::Proceed, 0, 0, 0, 0});
  EXPECT_NO_THROW(verify_code(code));
}

TEST(VerifierRules, RejectsJumpPastEnd) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::Jump, code.size() + 10, 0, 0, 0});
  expect_reject(code, "out of range");
}

TEST(VerifierRules, RejectsNegativeBranchTarget) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::TryMeElse, -5, 2, 0, 0});
  expect_reject(code, "alternative target -5");
}

TEST(VerifierRules, RejectsSwitchOnTermArmOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  // First three arms legal (the prelude addresses), imm arm dangling.
  code.emit({Op::SwitchOnTerm, kFailAddr, kFailAddr, kFailAddr, 9999});
  expect_reject(code, "struct target 9999");
}

TEST(VerifierRules, RejectsXRegisterOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::PutValueX, kVerifyMaxXRegs, 1, 0, 0});
  expect_reject(code, "X register 256");
}

TEST(VerifierRules, RejectsNegativeXRegister) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::GetVariableX, 0, -1, 0, 0});
  expect_reject(code, "X register -1");
}

TEST(VerifierRules, RejectsYSlotOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::GetValueY, kVerifyMaxYSlots, 0, 0, 0});
  expect_reject(code, "Y slot");
}

TEST(VerifierRules, RejectsCallToMissingProc) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::Call, 0, 0, 0, 0});  // no procs exist at all
  expect_reject(code, "proc index 0 out of range [0,0)");
}

TEST(VerifierRules, RejectsExecuteProcIndexOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  code.proc_index(PredId{atoms.intern("p"), 1});
  code.emit({Op::Execute, 5, 0, 0, 0});
  expect_reject(code, "proc index 5 out of range [0,1)");
}

TEST(VerifierRules, RejectsDanglingProcEntry) {
  Interner atoms;
  CodeStore code(atoms);
  i32 p = code.proc_index(PredId{atoms.intern("p"), 0});
  code.proc(p).entry = 400;  // past the end; -1 (unlinked) would be legal
  expect_reject(code, "proc 0 entry 400 out of range");
}

TEST(VerifierRules, RejectsSwitchTableIdOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::SwitchOnConst, 0, kFailAddr, 0, 0});  // no tables exist
  expect_reject(code, "switch table id 0 out of range");
}

TEST(VerifierRules, RejectsSwitchTableEntryOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  i32 t = code.new_switch_table();
  code.switch_add(t, CodeStore::const_key_int(7), 999);
  code.emit({Op::SwitchOnConst, t, kFailAddr, 0, 0});
  expect_reject(code, "switch table 0 entry target 999");
}

TEST(VerifierRules, RejectsAtomIdOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::PutConstant, static_cast<i32>(atoms.size()) + 50, 1, 0, 0});
  expect_reject(code, "atom id");
}

TEST(VerifierRules, RejectsFunctorArityOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  i32 f = static_cast<i32>(atoms.intern("f"));
  code.emit({Op::GetStructure, f, 1, 1 << 16, 0});
  expect_reject(code, "arity");
}

TEST(VerifierRules, RejectsChoicePointArgCountOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  // Saved argument registers A1..An must fit the X file.
  code.emit({Op::TryMeElse, kFailAddr, kVerifyMaxXRegs + 10, 0, 0});
  expect_reject(code, "argument count");
}

TEST(VerifierRules, RejectsBadMathFn) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::MathRR, 99, 0, 1, 2});
  expect_reject(code, "math function 99");
}

TEST(VerifierRules, RejectsMathRRImmRegisterOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  // MathRR's second source rides in imm and indexes the X file raw.
  code.emit({Op::MathRR, static_cast<i32>(MathFn::Add), 0, 1, 777});
  expect_reject(code, "source 2 X register 777");
}

TEST(VerifierRules, RejectsBadCmpFn) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::MathCmp, 42, 0, 1, 0});
  expect_reject(code, "compare function 42");
}

TEST(VerifierRules, RejectsBadBuiltinId) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::Builtin, static_cast<i32>(BuiltinId::kCount), 1, 0, 0});
  expect_reject(code, "builtin id");
}

TEST(VerifierRules, RejectsParGoalArityOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  code.proc_index(PredId{atoms.intern("g"), 0});
  code.emit({Op::PGoal, 0, 0, static_cast<i32>(kMaxParGoalArity) + 1, 0});
  expect_reject(code, "parallel goal arity");
}

TEST(VerifierRules, RejectsPFrameDanglingPwaitAddr) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::PFrame, 2, 0, 0, 5555});
  expect_reject(code, "pwait target 5555");
}

TEST(VerifierRules, RejectsSentinelOpcode) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::kOpCount, 0, 0, 0, 0});
  expect_reject(code, "bad opcode");
}

TEST(VerifierRules, RejectsUnknownOpcodeByte) {
  Interner atoms;
  CodeStore code(atoms);
  Instr forged;
  forged.op = static_cast<Op>(0xEE);
  code.emit(forged);
  expect_reject(code, "bad opcode 238");
}

TEST(VerifierRules, RejectsCorruptReservedPrelude) {
  Interner atoms;
  CodeStore code(atoms);
  code.at(kFailAddr).op = Op::Proceed;
  expect_reject(code, "reserved prelude");
}

TEST(VerifierRules, RejectsStoreTooShortForPrelude) {
  Interner atoms;
  CodeStore code(atoms);
  code.replace_code({Instr{Op::FailAlways, 0, 0, 0, 0}});
  expect_reject(code, "lacks the reserved prelude");
}

// -- fused superinstructions: the register indices packed into imm ----------

TEST(VerifierRules, RejectsFusedImmRegisterOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  code.emit({Op::FusePutValueX2, 1, 2, 3, 300});
  expect_reject(code, "op2 destination X register 300");
}

TEST(VerifierRules, RejectsFusedHighImmFieldOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  // FusePutValueX3's third window packs (src,dst) into imm bits 16..47.
  i64 imm = (i64{300} << 32) | (i64{1} << 16) | 2;
  code.emit({Op::FusePutValueX3, 1, 2, 3, imm});
  expect_reject(code, "op3 destination X register 300");
}

TEST(VerifierRules, RejectsFusedCmpGuardBadCompareFn) {
  Interner atoms;
  CodeStore code(atoms);
  i64 imm = (i64{99} << 16) | 4;  // cmp fn 99, legal temp register 4
  code.emit({Op::FuseCmpGuard, 1, 2, 3, imm});
  expect_reject(code, "compare function 99");
}

TEST(VerifierRules, RejectsFusedExecuteProcOutOfRange) {
  Interner atoms;
  CodeStore code(atoms);
  code.proc_index(PredId{atoms.intern("p"), 2});
  i64 imm = (i64{7} << 32) | 3;  // proc 7 of 1
  code.emit({Op::FusePutValueX2Execute, 1, 2, 3, imm});
  expect_reject(code, "tail call proc index 7");
}

TEST(VerifierRules, RejectsFusedMathCmpPackedRegisterOverflow) {
  Interner atoms;
  CodeStore code(atoms);
  i64 imm = (i64{999} << 16) | 1;  // compare source 1 = X999
  code.emit({Op::FuseMathLoadMathCmp, 1, 2, static_cast<i32>(CmpFn::Lt), imm});
  expect_reject(code, "compare source 1 X register 999");
}

// ---------------------------------------------------------------------------
// Corpus: everything the compiler emits must verify clean, fused and
// unfused, at both benchmark scales (the golden-corpus programs are
// exactly these four benchmarks).

TEST(VerifierCorpus, AcceptsCompiledPaperBenchmarks) {
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    for (bool fuse : {false, true}) {
      SCOPED_TRACE(std::string(name) + (fuse ? "/fused" : "/plain"));
      auto code = compile_bench(name, fuse);
      EXPECT_NO_THROW(verify_code(*code));
    }
  }
}

TEST(VerifierCorpus, AcceptsPaperScaleAndStrippedCompilation) {
  for (const char* name : {"qsort", "tak"}) {
    BenchProgram bp = bench_program(name, BenchScale::Paper);
    Program prog;
    prog.consult(bp.source);
    CompileOptions opts;
    opts.strip_cge = true;  // sequential-WAM baseline path
    opts.fuse = true;
    EXPECT_NO_THROW(verify_code(*compile_program(prog, opts)));
  }
}

TEST(VerifierCorpus, AcceptsFusePassAppliedDirectly) {
  // The differential path tests run fuse_code on stores compiled with
  // fusion off; that combination must stay verifiable too.
  auto code = compile_bench("deriv", /*fuse=*/false);
  fuse_code(*code);
  EXPECT_NO_THROW(verify_code(*code));
}

// ---------------------------------------------------------------------------
// Fuzz: mutate real compiled programs. Guaranteed-invalid mutations
// must reject; arbitrary bit flips must reject-or-pass with no UB.

std::vector<Instr> snapshot(const CodeStore& code) {
  std::vector<Instr> out;
  out.reserve(static_cast<std::size_t>(code.size()));
  for (i32 i = 0; i < code.size(); ++i) out.push_back(code.at(i));
  return out;
}

TEST(VerifierFuzz, TruncatedStoresAlwaysRejected) {
  auto code = compile_bench("qsort", /*fuse=*/true);
  const std::vector<Instr> full = snapshot(*code);
  // Any cut at or below the highest proc entry leaves that entry
  // dangling, so every such truncation is guaranteed-invalid.
  i32 max_entry = 0;
  for (i32 p = 0; p < static_cast<i32>(code->proc_count()); ++p)
    max_entry = std::max(max_entry, code->proc(p).entry);
  ASSERT_GT(max_entry, 3);
  Lcg rng(0x7259C471u);
  for (int i = 0; i < 32; ++i) {
    i32 cut = 3 + static_cast<i32>(rng.next(static_cast<u64>(max_entry - 2)));
    SCOPED_TRACE(cut);
    code->replace_code(std::vector<Instr>(
        full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_THROW(verify_code(*code), Error);
    code->replace_code(full);
  }
}

TEST(VerifierFuzz, ForgedOpcodeBytesAlwaysRejected) {
  auto code = compile_bench("deriv", /*fuse=*/true);
  const std::vector<Instr> full = snapshot(*code);
  Lcg rng(0xBADC0DEu);
  for (int i = 0; i < 64; ++i) {
    i32 at = static_cast<i32>(rng.next(static_cast<u64>(code->size())));
    u8 byte = static_cast<u8>(static_cast<u64>(Op::kOpCount) +
                              rng.next(256 - static_cast<u64>(Op::kOpCount)));
    code->at(at).op = static_cast<Op>(byte);
    expect_reject(*code, at < 3 ? "" : "bad opcode");
    code->at(at) = full[static_cast<std::size_t>(at)];
  }
}

TEST(VerifierFuzz, ForgedOperandOverflowsAlwaysRejected) {
  // Walk a real fused program and, per opcode, plant an operand the
  // rule table guarantees is invalid. Every plant must reject.
  auto code = compile_bench("qsort", /*fuse=*/true);
  const std::vector<Instr> full = snapshot(*code);
  int planted = 0;
  for (i32 at = 3; at < code->size(); ++at) {
    Instr& ins = code->at(at);
    bool mutated = true;
    switch (ins.op) {
      case Op::Call:
      case Op::Execute:
        ins.a = static_cast<i32>(code->proc_count()) + 11;
        break;
      case Op::Jump:
      case Op::TryMeElse:
      case Op::RetryMeElse:
      case Op::Try:
      case Op::Retry:
      case Op::Trust:
        ins.a = code->size() + 1000;
        break;
      case Op::SwitchOnTerm:
        ins.imm = code->size() + 1000;
        break;
      case Op::SwitchOnConst:
      case Op::SwitchOnStruct:
        ins.a = code->table_count() + 4;
        break;
      case Op::GetVariableX:
      case Op::GetValueX:
      case Op::PutVariableX:
      case Op::PutValueX:
      case Op::FusePutValueX2:
      case Op::FuseGetVarXPutValueX:
      case Op::FuseGetVarX2:
        ins.b = kVerifyMaxXRegs + at;
        break;
      case Op::GetConstant:
      case Op::PutConstant:
      case Op::UnifyConstant:
      case Op::GetStructure:
      case Op::PutStructure:
        ins.a = static_cast<i32>(code->atoms().size()) + 9;
        break;
      case Op::MathRR:
      case Op::MathRI:
        ins.a = 200;  // no such MathFn
        break;
      case Op::MathCmp:
        ins.a = 200;  // no such CmpFn
        break;
      case Op::PGoal:
        ins.c = static_cast<i32>(kMaxParGoalArity) + 1;
        break;
      default:
        mutated = false;
    }
    if (!mutated) continue;
    ++planted;
    SCOPED_TRACE(at);
    EXPECT_THROW(verify_code(*code), Error);
    ins = full[static_cast<std::size_t>(at)];
  }
  // The sweep must have actually exercised a spread of rules.
  EXPECT_GE(planted, 20);
  EXPECT_NO_THROW(verify_code(*code));  // restoration left it pristine
}

TEST(VerifierFuzz, RandomBitFlipsRejectStructuredOrPassClean) {
  // Arbitrary single-bit corruption: the verifier must either throw a
  // structured "verify:" Error or accept the store — never crash or
  // index out of bounds itself (the ASan shard enforces the latter).
  auto code = compile_bench("matrix", /*fuse=*/true);
  const std::vector<Instr> full = snapshot(*code);
  Lcg rng(0xF11BB5EEu);
  int rejected = 0;
  for (int i = 0; i < 400; ++i) {
    i32 at = static_cast<i32>(rng.next(static_cast<u64>(code->size())));
    Instr& ins = code->at(at);
    switch (rng.next(5)) {
      case 0:
        ins.op = static_cast<Op>(static_cast<u8>(ins.op) ^
                                 (1u << rng.next(8)));
        break;
      case 1:
        ins.a ^= 1 << rng.next(31);
        break;
      case 2:
        ins.b ^= 1 << rng.next(31);
        break;
      case 3:
        ins.c ^= 1 << rng.next(31);
        break;
      default:
        ins.imm ^= i64{1} << rng.next(63);
        break;
    }
    try {
      verify_code(*code);
    } catch (const Error& e) {
      ++rejected;
      EXPECT_NE(std::string(e.what()).find("verify:"), std::string::npos)
          << e.what();
    }
    ins = full[static_cast<std::size_t>(at)];
  }
  // High-bit flips land far out of range, so a healthy majority of
  // flips must have been caught.
  EXPECT_GT(rejected, 100);
}

}  // namespace
}  // namespace rapwam
