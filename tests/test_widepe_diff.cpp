// Differential tests for the wide (PeSet) sharing directory
// (docs/DESIGN.md §11).
//
// Two pins, from two directions:
//   * <= 64 PEs: DirRep::Wide forced against the default flat u64
//     directory — every protocol, the batched replay path, the
//     per-reference step() path, the hierarchy, and the timed replay
//     must be bit-identical (TrafficStats, StepOutcomes, TimingStats,
//     final cache contents). The wide representation is a pure change
//     of mask encoding; any divergence is a bug in it.
//   * > 64 PEs (65/128/256): the wide directory against the naive
//     broadcast ReferenceCacheSim, which has no PE cap and never had
//     masks — the same executable-specification check the flat
//     directory is held to below 65 PEs.
// Plus a ThreadPool sweep determinism check at > 64 PEs (run under the
// CI ThreadSanitizer job) and coherence/consistency property tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/hierarchy.h"
#include "cache/refsim.h"
#include "cache/sweep.h"
#include "test_rand.h"
#include "timing/timed_replay.h"

namespace rapwam {
namespace {

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

std::vector<Line> sorted_lines(const Cache& c) {
  std::vector<Line> ls = c.lines();
  std::sort(ls.begin(), ls.end(),
            [](const Line& a, const Line& b) { return a.tag < b.tag; });
  return ls;
}

template <typename SimA, typename SimB>
void expect_same_caches(const SimA& a, const SimB& b, unsigned pes,
                        const char* what) {
  for (unsigned pe = 0; pe < pes; ++pe) {
    std::vector<Line> la = sorted_lines(a.cache(pe));
    std::vector<Line> lb = sorted_lines(b.cache(pe));
    ASSERT_EQ(la.size(), lb.size()) << what << " pe=" << pe;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].tag, lb[i].tag) << what << " pe=" << pe;
      EXPECT_EQ(la[i].state, lb[i].state)
          << what << " pe=" << pe << " tag=" << la[i].tag;
    }
  }
}

CacheConfig diff_cfg(Protocol p, u32 size_words = 512) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size_words;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

// --- <= 64 PEs: forced-wide vs flat, bit-identical -------------------------

TEST(WidePeDiff, ForcedWideMatchesFlatBitIdentical) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 4u, 8u, 64u}) {
      std::vector<u64> trace =
          random_trace(0x11DEu + static_cast<u64>(p) * 131 + pes, pes, 20000);
      MultiCacheSim flat(diff_cfg(p), pes, DirRep::Flat);
      MultiCacheSim wide(diff_cfg(p), pes, DirRep::Wide);
      ASSERT_FALSE(flat.wide_directory());
      ASSERT_TRUE(wide.wide_directory());
      flat.replay(trace);
      wide.replay(trace);
      std::string what = protocol_name(p) + "/" + std::to_string(pes) + "pe";
      EXPECT_EQ(flat.stats(), wide.stats()) << what;
      EXPECT_EQ(flat.invariants_ok(), wide.invariants_ok()) << what;
      EXPECT_TRUE(flat.directory_consistent()) << what;
      EXPECT_TRUE(wide.directory_consistent()) << what;
      expect_same_caches(flat, wide, pes, what.c_str());
    }
  }
}

TEST(WidePeDiff, StepOutcomesMatchFlatPerReference) {
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0x57E9 + static_cast<u64>(p), 8, 8000);
    MultiCacheSim flat(diff_cfg(p), 8, DirRep::Flat);
    MultiCacheSim wide(diff_cfg(p), 8, DirRep::Wide);
    for (u64 packed : trace) {
      MemRef r = MemRef::unpack(packed);
      StepOutcome a = flat.step(r);
      StepOutcome b = wide.step(r);
      ASSERT_EQ(a.miss, b.miss) << protocol_name(p);
      ASSERT_EQ(a.supplier, b.supplier) << protocol_name(p);
      ASSERT_EQ(a.bus_words, b.bus_words) << protocol_name(p);
      ASSERT_EQ(a.demand_words, b.demand_words) << protocol_name(p);
      ASSERT_EQ(a.posted_words, b.posted_words) << protocol_name(p);
      ASSERT_EQ(a.invalidations, b.invalidations) << protocol_name(p);
    }
    EXPECT_EQ(flat.stats(), wide.stats()) << protocol_name(p);
  }
}

TEST(WidePeDiff, HierarchyForcedWideMatchesFlat) {
  // A small inclusive L2 forces frequent back-invalidation — the one
  // hierarchy path that reads directory masks directly.
  for (L2Config::Inclusion inc : {L2Config::Inclusion::Inclusive,
                                  L2Config::Inclusion::NonInclusive}) {
    CacheConfig cfg = diff_cfg(Protocol::WriteInBroadcast, 256);
    cfg.l2.size_words = 512;
    cfg.l2.ways = 4;
    cfg.l2.inclusion = inc;
    std::vector<u64> trace = random_trace(0x1E5E + (inc == L2Config::Inclusion::Inclusive), 8, 20000);
    HierCacheSim flat(cfg, 8, DirRep::Flat);
    HierCacheSim wide(cfg, 8, DirRep::Wide);
    flat.replay(trace.data(), trace.size());
    wide.replay(trace.data(), trace.size());
    std::string what = std::string("hier-") + inclusion_name(inc);
    EXPECT_EQ(flat.stats(), wide.stats()) << what;
    EXPECT_TRUE(flat.inclusion_ok()) << what;
    EXPECT_TRUE(wide.inclusion_ok()) << what;
    EXPECT_TRUE(wide.directory_consistent()) << what;
    expect_same_caches(flat, wide, 8, what.c_str());
  }
}

TEST(WidePeDiff, TimedReplayForcedWideMatchesFlat) {
  std::vector<u64> trace = random_trace(0x71AE, 8, 12000);
  TimingParams tp{1, 1, 2, 4, 0};
  TimedReplay flat(diff_cfg(Protocol::WriteInBroadcast), 8, tp, DirRep::Flat);
  TimedReplay wide(diff_cfg(Protocol::WriteInBroadcast), 8, tp, DirRep::Wide);
  flat.replay(trace);
  wide.replay(trace);
  EXPECT_EQ(flat.traffic(), wide.traffic());
  TimingStats a = flat.timing(), b = wide.timing();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bus_busy_cycles, b.bus_busy_cycles);
  EXPECT_EQ(a.bus_transactions, b.bus_transactions);
  EXPECT_EQ(a.cache_fills, b.cache_fills);
  EXPECT_EQ(a.mem_fills, b.mem_fills);
  EXPECT_EQ(a.total_busy(), b.total_busy());
  EXPECT_EQ(a.total_stall(), b.total_stall());
}

// --- > 64 PEs: wide directory vs the naive broadcast reference -------------

TEST(WidePeDiff, ManyPesMatchNaiveReference) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {65u, 128u, 256u}) {
      std::vector<u64> trace =
          random_trace(0xB16 + static_cast<u64>(p) * 17 + pes, pes, 30000);
      MultiCacheSim wide(diff_cfg(p), pes);
      ASSERT_TRUE(wide.wide_directory());  // Auto picks wide above 64
      ReferenceCacheSim naive(diff_cfg(p), pes);
      wide.replay(trace);
      naive.replay(trace);
      std::string what = protocol_name(p) + "/" + std::to_string(pes) + "pe";
      EXPECT_EQ(wide.stats(), naive.stats()) << what;
      EXPECT_EQ(wide.invariants_ok(), naive.invariants_ok()) << what;
      if (p != Protocol::Hybrid) EXPECT_TRUE(wide.invariants_ok()) << what;
      EXPECT_TRUE(wide.directory_consistent()) << what;
      expect_same_caches(wide, naive, pes, what.c_str());
    }
  }
}

TEST(WidePeDiff, ManyPesHeavyEvictionMatchesNaive) {
  // 4 lines per PE at 128 PEs: near-constant eviction churns directory
  // entries whose masks straddle the first/second word boundary.
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0xE71C + static_cast<u64>(p), 128, 25000);
    MultiCacheSim wide(diff_cfg(p, 16), 128);
    ReferenceCacheSim naive(diff_cfg(p, 16), 128);
    wide.replay(trace);
    naive.replay(trace);
    EXPECT_EQ(wide.stats(), naive.stats()) << protocol_name(p);
    EXPECT_TRUE(wide.directory_consistent()) << protocol_name(p);
    expect_same_caches(wide, naive, 128, protocol_name(p).c_str());
  }
}

TEST(WidePeDiff, HierarchyBackInvalidationAboveSixtyFourPes) {
  // Inclusive L2 far smaller than the aggregate L1 capacity at 256
  // PEs: back-invalidation constantly collapses wide holder sets.
  CacheConfig cfg = diff_cfg(Protocol::WriteInBroadcast, 64);
  cfg.l2.size_words = 1024;
  cfg.l2.ways = 8;
  cfg.l2.inclusion = L2Config::Inclusion::Inclusive;
  std::vector<u64> trace = random_trace(0xBAC4, 256, 40000);
  HierCacheSim sim(cfg, 256);
  ASSERT_TRUE(sim.wide_directory());
  sim.replay(trace.data(), trace.size());
  EXPECT_GT(sim.stats().l2_back_invalidations, 0u);
  EXPECT_TRUE(sim.inclusion_ok());
  EXPECT_TRUE(sim.invariants_ok());
  EXPECT_TRUE(sim.directory_consistent());
}

TEST(WidePeDiff, SharersAcrossWordBoundaries) {
  // One line read by every PE then written by PE 0: the invalidation
  // must reach holders in every mask word, and the directory must
  // collapse to the single writer.
  const unsigned pes = 200;
  MultiCacheSim sim(diff_cfg(Protocol::WriteInBroadcast), pes);
  MemRef r;
  r.addr = 0;
  r.cls = ObjClass::HeapTerm;
  for (unsigned pe = 0; pe < pes; ++pe) {
    r.pe = static_cast<u8>(pe);
    r.write = false;
    sim.access(r);
  }
  for (unsigned pe = 0; pe < pes; ++pe)
    EXPECT_NE(sim.cache(pe).lines().size(), 0u) << pe;
  r.pe = 0;
  r.write = true;
  sim.access(r);
  EXPECT_EQ(sim.stats().invalidations, 1u);
  EXPECT_EQ(sim.cache(0).lines().size(), 1u);
  for (unsigned pe = 1; pe < pes; ++pe)
    EXPECT_EQ(sim.cache(pe).lines().size(), 0u) << pe;
  EXPECT_TRUE(sim.directory_consistent());
}

TEST(WidePeDiff, TimedReplayRunsAboveSixtyFourPes) {
  // End-to-end timing at 256 PEs: per-PE structures must size past the
  // old cap and the coherence side must stay consistent.
  std::vector<u64> trace = random_trace(0x256AE, 256, 20000);
  TimedReplay tr(diff_cfg(Protocol::WriteInBroadcast), 256,
                 TimingParams{1, 1, 2, 4, 0});
  tr.replay(trace);
  TimingStats ts = tr.timing();
  EXPECT_EQ(ts.pe.size(), 256u);
  EXPECT_EQ(tr.traffic().refs, trace.size());
  EXPECT_GT(ts.makespan, 0u);
  EXPECT_TRUE(tr.sim().directory_consistent());
  // Same trace, untimed: traffic must agree (timing never perturbs
  // coherence, wide directory included).
  MultiCacheSim untimed(diff_cfg(Protocol::WriteInBroadcast), 256);
  untimed.replay(trace);
  EXPECT_EQ(tr.traffic(), untimed.stats());
}

// --- threaded sweeps over the wide directory (TSan-covered) ----------------

TEST(WidePeSweepDeterminism, PoolMatchesSerialAboveSixtyFourPes) {
  std::vector<u64> t128 = random_trace(0x128AB, 128, 10000);
  std::vector<SweepPoint> points;
  int label = 0;
  for (Protocol p : kAllProtocols) {
    for (u32 sz : {256u, 1024u}) {
      SweepPoint sp;
      sp.cfg = diff_cfg(p, sz);
      sp.num_pes = 128;
      sp.trace = &t128;
      sp.label = label++;
      points.push_back(sp);
    }
  }
  ThreadPool pool(4);
  std::vector<SweepResult> pooled = run_sweep(pool, points);
  ASSERT_EQ(pooled.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    TrafficStats serial =
        replay_traffic(points[i].cfg, points[i].num_pes, *points[i].trace);
    EXPECT_EQ(pooled[i].stats, serial) << "point " << i;
  }
}

}  // namespace
}  // namespace rapwam
