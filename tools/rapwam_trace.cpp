// rapwam_trace — record, inspect, replay and time memory-reference
// traces.
//
//   rapwam_trace record --bench qsort --pes 4 --out qsort4.trc [--scale paper]
//   rapwam_trace stats  qsort4.trc [--pes 4]
//   rapwam_trace replay qsort4.trc --protocol broadcast --size 1024 [--pes 4]
//   rapwam_trace time   qsort4.trc [--service 1] [--interleave 2] [--wbuf 4]
//                       [--cpr 1] [--protocol broadcast] [--size 1024] [--pes 4]
//   rapwam_trace dump   qsort4.trc [--head 20]
//
// `time` replays through the event-driven timed engine (per-PE clocks,
// shared bus, write buffers — docs/DESIGN.md §7) and prints measured
// speedup/stalls next to the analytic M/D/1 prediction.
// Traces are the 8-byte packed records of src/trace/memref.h.
#include <cstdio>
#include <string>

#include "cache/multisim.h"
#include "cache/queueing.h"
#include "harness/runner.h"
#include "trace/chunks.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"
#include "timing/timed_replay.h"

using namespace rapwam;

namespace {

/// Cache geometry/protocol flags shared by `replay` and `time`.
CacheConfig config_from_cli(const Cli& cli) {
  CacheConfig cfg;
  cfg.protocol = protocol_from_name(cli.get("protocol", "broadcast"));
  cfg.size_words = static_cast<u32>(cli.get_int("size", 1024));
  cfg.line_words = static_cast<u32>(cli.get_int("line", 4));
  cfg.ways = static_cast<u32>(cli.get_int("ways", 0));
  cfg.write_allocate =
      cli.has("no-allocate") ? false : paper_write_allocate(cfg.protocol, cfg.size_words);
  return cfg;
}

int cmd_record(const Cli& cli) {
  std::string bench = cli.get("bench", "qsort");
  unsigned pes = check_pes(static_cast<unsigned>(cli.get_int("pes", 4)));
  std::string out = cli.get("out", bench + ".trc");
  BenchScale scale = cli.get("scale", "small") == "paper" ? BenchScale::Paper
                                                          : BenchScale::Small;
  // Chunks stream straight from the emulator to the file: recording a
  // multi-million-reference trace needs O(chunk) memory.
  FileTraceSink sink(out, /*busy_only=*/true);
  run_into(bench_program(bench, scale), pes, /*strip=*/false, &sink);
  sink.close();
  std::printf("wrote %llu references to %s (recorded on %u PEs)\n",
              (unsigned long long)sink.written(), out.c_str(), sink.counts().pes());
  return 0;
}

int cmd_stats(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  RefCounts c;
  for (u64 p : t) c.add(MemRef::unpack(p));
  std::printf("references: %llu  (reads %llu / writes %llu)\n",
              (unsigned long long)c.total, (unsigned long long)c.reads,
              (unsigned long long)c.writes);
  TextTable by_area("by area");
  by_area.header({"area", "refs", "share"});
  for (std::size_t a = 0; a < kAreaCount; ++a) {
    if (!c.by_area[a]) continue;
    by_area.row({std::string(area_name(static_cast<Area>(a))),
                 std::to_string(c.by_area[a]),
                 fmt_pct(double(c.by_area[a]) / double(c.total), 1)});
  }
  std::fputs(by_area.str().c_str(), stdout);
  TextTable by_class("by object class (Table 1)");
  by_class.header({"class", "refs", "locality"});
  for (std::size_t k = 0; k < kObjClassCount; ++k) {
    if (!c.by_class[k]) continue;
    ObjClass oc = static_cast<ObjClass>(k);
    by_class.row({std::string(obj_class_name(oc)), std::to_string(c.by_class[k]),
                  std::string(locality_name(traits_of(oc).locality))});
  }
  std::fputs(by_class.str().c_str(), stdout);
  std::printf("PEs present: %u\n", pes_in_trace(t));
  return 0;
}

int cmd_replay(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  CacheConfig cfg = config_from_cli(cli);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", pes_in_trace(t))));
  MultiCacheSim sim(cfg, pes);
  sim.replay(t);
  const TrafficStats& s = sim.stats();
  std::printf("%s, %u words, %u-word lines, %s, %u PEs\n",
              protocol_name(cfg.protocol).c_str(), cfg.size_words, cfg.line_words,
              cfg.write_allocate ? "write-allocate" : "no-write-allocate", pes);
  std::printf("  traffic ratio  %.4f\n", s.traffic_ratio());
  std::printf("  miss ratio     %.4f\n", s.miss_ratio());
  std::printf("  bus words      %llu  (fetch %llu, writeback %llu, through %llu,\n"
              "                  invalidations %llu, updates %llu, flush %llu)\n",
              (unsigned long long)s.bus_words, (unsigned long long)s.fetch_words,
              (unsigned long long)s.writeback_words,
              (unsigned long long)s.writethrough_words,
              (unsigned long long)s.invalidations, (unsigned long long)s.update_words,
              (unsigned long long)s.flush_words);
  if (s.coherence_violations)
    std::printf("  COHERENCE VIOLATIONS: %llu\n",
                (unsigned long long)s.coherence_violations);
  return 0;
}

int cmd_time(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  CacheConfig cfg = config_from_cli(cli);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", pes_in_trace(t))));
  TimingParams tp;
  tp.cycles_per_ref = static_cast<u32>(cli.get_int("cpr", 1));
  tp.bus_service_cycles = static_cast<u32>(cli.get_int("service", 1));
  tp.interleave = static_cast<u32>(cli.get_int("interleave", 2));
  tp.write_buffer_depth = static_cast<u32>(cli.get_int("wbuf", 4));

  TimedReplay sim(cfg, pes, tp);
  sim.replay(t);
  TimingStats ts = sim.timing();

  std::printf("%s, %u words, %u-word lines, %u PEs; bus %u cycle(s)/word, "
              "%u-way interleave, %u-deep write buffers\n",
              protocol_name(cfg.protocol).c_str(), cfg.size_words, cfg.line_words,
              pes, tp.bus_service_cycles, tp.interleave, tp.write_buffer_depth);
  std::printf("  traffic ratio   %.4f   miss ratio %.4f\n",
              sim.traffic().traffic_ratio(), sim.traffic().miss_ratio());
  std::printf("  makespan        %llu cycles\n", (unsigned long long)ts.makespan);
  std::printf("  speedup         x%.2f  (efficiency %.3f)\n", ts.speedup(),
              ts.efficiency());
  std::printf("  bus utilization %.3f  (%llu busy cycles, %llu transactions%s)\n",
              ts.bus_utilization(), (unsigned long long)ts.bus_busy_cycles,
              (unsigned long long)ts.bus_transactions,
              ts.saturated() ? ", SATURATED" : "");

  TextTable per_pe("per PE");
  per_pe.header({"PE", "refs", "busy cycles", "stall cycles", "stall %", "retired at"});
  for (unsigned pe = 0; pe < ts.pe.size(); ++pe) {
    const PeTiming& p = ts.pe[pe];
    double denom = static_cast<double>(p.busy_cycles + p.stall_cycles);
    per_pe.row({std::to_string(pe), std::to_string(p.refs),
                std::to_string(p.busy_cycles), std::to_string(p.stall_cycles),
                denom > 0 ? fmt_pct(static_cast<double>(p.stall_cycles) / denom, 1)
                          : "n/a",
                std::to_string(p.clock)});
  }
  std::fputs(per_pe.str().c_str(), stdout);

  BusEstimate e =
      bus_contention(pes, sim.traffic().traffic_ratio(), BusParams{tp.effective_service()});
  std::printf("analytic M/D/1 at the same traffic ratio: speedup x%.2f, "
              "efficiency %.3f, utilization %.3f\n",
              e.aggregate_speedup, e.pe_efficiency, e.utilization);
  return 0;
}

int cmd_dump(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  i64 head = cli.get_int("head", 20);
  for (i64 i = 0; i < head && i < static_cast<i64>(t.size()); ++i) {
    MemRef r = MemRef::unpack(t[static_cast<std::size_t>(i)]);
    std::printf("%6lld  pe%-2u %c %-18s %#llx\n", (long long)i, unsigned(r.pe),
                r.write ? 'W' : 'R',
                std::string(obj_class_name(r.cls)).c_str(),
                (unsigned long long)r.addr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) {
      std::puts(
          "usage: rapwam_trace record|stats|replay|time|dump ... (see source header)");
      return 2;
    }
    const std::string& cmd = cli.positional()[0];
    if (cmd == "record") return cmd_record(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "replay") return cmd_replay(cli);
    if (cmd == "time") return cmd_time(cli);
    if (cmd == "dump") return cmd_dump(cli);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
