// rapwam_trace — record, inspect and replay memory-reference traces.
//
//   rapwam_trace record --bench qsort --pes 4 --out qsort4.trc [--scale paper]
//   rapwam_trace stats  qsort4.trc [--pes 4]
//   rapwam_trace replay qsort4.trc --protocol broadcast --size 1024 [--pes 4]
//   rapwam_trace dump   qsort4.trc [--head 20]
//
// Traces are the 8-byte packed records of src/trace/memref.h.
#include <cstdio>
#include <string>

#include "cache/multisim.h"
#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

using namespace rapwam;

namespace {

Protocol parse_protocol(const std::string& s) {
  if (s == "write-thru" || s == "wt") return Protocol::WriteThrough;
  if (s == "broadcast" || s == "write-in") return Protocol::WriteInBroadcast;
  if (s == "update" || s == "write-update") return Protocol::WriteThroughBroadcast;
  if (s == "hybrid") return Protocol::Hybrid;
  if (s == "copyback") return Protocol::Copyback;
  fail("unknown protocol: " + s +
       " (write-thru|broadcast|update|hybrid|copyback)");
}

unsigned pes_in_trace(const std::vector<u64>& t) {
  unsigned maxpe = 0;
  for (u64 p : t) maxpe = std::max(maxpe, unsigned(MemRef::unpack(p).pe));
  return maxpe + 1;
}

unsigned check_pes(unsigned pes) {
  if (pes < 1 || pes > 64)
    fail("--pes must be 1..64 (the cache simulator's directory uses 64-bit "
         "per-PE holder masks)");
  return pes;
}

int cmd_record(const Cli& cli) {
  std::string bench = cli.get("bench", "qsort");
  unsigned pes = check_pes(static_cast<unsigned>(cli.get_int("pes", 4)));
  std::string out = cli.get("out", bench + ".trc");
  BenchScale scale = cli.get("scale", "small") == "paper" ? BenchScale::Paper
                                                          : BenchScale::Small;
  BenchRun r = run_parallel(bench_program(bench, scale), pes, /*want_trace=*/true);
  save_trace(r.trace->packed(), out);
  std::printf("wrote %zu references to %s\n", r.trace->size(), out.c_str());
  return 0;
}

int cmd_stats(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  RefCounts c;
  for (u64 p : t) c.add(MemRef::unpack(p));
  std::printf("references: %llu  (reads %llu / writes %llu)\n",
              (unsigned long long)c.total, (unsigned long long)c.reads,
              (unsigned long long)c.writes);
  TextTable by_area("by area");
  by_area.header({"area", "refs", "share"});
  for (std::size_t a = 0; a < kAreaCount; ++a) {
    if (!c.by_area[a]) continue;
    by_area.row({std::string(area_name(static_cast<Area>(a))),
                 std::to_string(c.by_area[a]),
                 fmt_pct(double(c.by_area[a]) / double(c.total), 1)});
  }
  std::fputs(by_area.str().c_str(), stdout);
  TextTable by_class("by object class (Table 1)");
  by_class.header({"class", "refs", "locality"});
  for (std::size_t k = 0; k < kObjClassCount; ++k) {
    if (!c.by_class[k]) continue;
    ObjClass oc = static_cast<ObjClass>(k);
    by_class.row({std::string(obj_class_name(oc)), std::to_string(c.by_class[k]),
                  std::string(locality_name(traits_of(oc).locality))});
  }
  std::fputs(by_class.str().c_str(), stdout);
  std::printf("PEs present: %u\n", pes_in_trace(t));
  return 0;
}

int cmd_replay(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  CacheConfig cfg;
  cfg.protocol = parse_protocol(cli.get("protocol", "broadcast"));
  cfg.size_words = static_cast<u32>(cli.get_int("size", 1024));
  cfg.line_words = static_cast<u32>(cli.get_int("line", 4));
  cfg.ways = static_cast<u32>(cli.get_int("ways", 0));
  cfg.write_allocate =
      cli.has("no-allocate") ? false : paper_write_allocate(cfg.protocol, cfg.size_words);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", pes_in_trace(t))));
  MultiCacheSim sim(cfg, pes);
  sim.replay(t);
  const TrafficStats& s = sim.stats();
  std::printf("%s, %u words, %u-word lines, %s, %u PEs\n",
              protocol_name(cfg.protocol).c_str(), cfg.size_words, cfg.line_words,
              cfg.write_allocate ? "write-allocate" : "no-write-allocate", pes);
  std::printf("  traffic ratio  %.4f\n", s.traffic_ratio());
  std::printf("  miss ratio     %.4f\n", s.miss_ratio());
  std::printf("  bus words      %llu  (fetch %llu, writeback %llu, through %llu,\n"
              "                  invalidations %llu, updates %llu, flush %llu)\n",
              (unsigned long long)s.bus_words, (unsigned long long)s.fetch_words,
              (unsigned long long)s.writeback_words,
              (unsigned long long)s.writethrough_words,
              (unsigned long long)s.invalidations, (unsigned long long)s.update_words,
              (unsigned long long)s.flush_words);
  if (s.coherence_violations)
    std::printf("  COHERENCE VIOLATIONS: %llu\n",
                (unsigned long long)s.coherence_violations);
  return 0;
}

int cmd_dump(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  i64 head = cli.get_int("head", 20);
  for (i64 i = 0; i < head && i < static_cast<i64>(t.size()); ++i) {
    MemRef r = MemRef::unpack(t[static_cast<std::size_t>(i)]);
    std::printf("%6lld  pe%-2u %c %-18s %#llx\n", (long long)i, unsigned(r.pe),
                r.write ? 'W' : 'R',
                std::string(obj_class_name(r.cls)).c_str(),
                (unsigned long long)r.addr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) {
      std::puts("usage: rapwam_trace record|stats|replay|dump ... (see source header)");
      return 2;
    }
    const std::string& cmd = cli.positional()[0];
    if (cmd == "record") return cmd_record(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "replay") return cmd_replay(cli);
    if (cmd == "dump") return cmd_dump(cli);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
