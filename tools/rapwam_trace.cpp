// rapwam_trace — record, inspect, replay and time memory-reference
// traces.
//
//   rapwam_trace record --bench qsort --pes 4 --out qsort4.trc [--scale paper]
//                       [--max-heap-mb MB] [--max-steps N] [--timeout-ms MS]
//   rapwam_trace run    --bench qsort --pes 4 [--scale paper] [--wam]
//                       [--solutions N] [--max-heap-mb MB] [--max-steps N]
//                       [--timeout-ms MS]
//   rapwam_trace stats  qsort4.trc [--pes 4]
//   rapwam_trace replay qsort4.trc --protocol broadcast --size 1024 [--pes 4]
//                       [--l2 4096] [--l2-ways 8] [--l2-noninclusive]
//                       [--checkpoint PATH [--checkpoint-every N] [--resume]]
//   rapwam_trace time   qsort4.trc [--service 1] [--interleave 2] [--wbuf 4]
//                       [--cpr 1] [--protocol broadcast] [--size 1024] [--pes 4]
//                       [--l2 4096] [--l2-hit 2] [--mem-extra 10]
//                       [--checkpoint PATH [--checkpoint-every N] [--resume]]
//   rapwam_trace sweep  qsort4.trc [--protocols wt,broadcast,...] [--sizes 512,1024]
//                       [--pes 4] [--threads 4] [--journal PATH]
//   rapwam_trace dump   qsort4.trc [--head 20]
//   rapwam_trace golden [--update] [--dir PATH] [--bench NAME]
//   rapwam_trace serve  --socket unix:/tmp/rapwam.sock [--workers 4]
//                       [--queue 16] [--deadline MS] [--enable-faults]
//   rapwam_trace request '<json-request>' --socket unix:/tmp/rapwam.sock
//                       [--timeout MS] [--attempts N] [--seed S]
//
// `time` replays through the event-driven timed engine (per-PE clocks,
// shared bus, write buffers — docs/DESIGN.md §7) and prints measured
// speedup/stalls next to the analytic M/D/1 prediction. The --l2 flags
// put the shared second-level cache of docs/DESIGN.md §9 between the
// bus and memory. `golden` verifies the committed golden-stats corpus
// (tests/golden/) against a live recomputation, or regenerates it with
// --update after an intentional change.
//
// --checkpoint makes replay/time crash-safe (docs/DESIGN.md §12):
// every N chunks the complete simulator state is published atomically
// to PATH (the previous snapshot rotates to PATH.prev), and --resume
// continues from the newest valid snapshot — with stats bit-identical
// to the uninterrupted run. `sweep --journal` is the sweep-level
// counterpart: completed points land in an append-only journal and a
// rerun skips them. All checkpoint progress lines start with
// "checkpoint"/"journal" so scripted runs can filter them out before
// diffing against an uninterrupted run's output. --enable-faults with
// --fault '<json>' drives the same injection matrix as the server
// (server/faults.h), including the checkpoint crash/corruption sites.
//
// `record` and `run` execute the WAM engine, so they take the engine
// governance flags: --max-heap-mb / --max-steps bound the query's heap
// and instruction budget (a trip exits with structured text naming the
// budget), --timeout-ms deadline-kills the generation mid-run, and
// --enable-faults --fault '{"gen_...": N}' drives the engine-side
// fault sites. Traces are the 8-byte packed records of src/trace/memref.h.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "cache/hierarchy.h"
#include "cache/queueing.h"
#include "cache/sweep.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/journal.h"
#include "harness/golden.h"
#include "harness/runner.h"
#include "server/client.h"
#include "server/faults.h"
#include "server/server.h"
#include "trace/chunks.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"
#include "timing/timed_replay.h"

using namespace rapwam;

namespace {

/// Cache geometry/protocol flags shared by `replay` and `time`.
CacheConfig config_from_cli(const Cli& cli) {
  CacheConfig cfg;
  cfg.protocol = protocol_from_name(cli.get("protocol", "broadcast"));
  cfg.size_words = static_cast<u32>(cli.get_int("size", 1024));
  cfg.line_words = static_cast<u32>(cli.get_int("line", 4));
  cfg.ways = static_cast<u32>(cli.get_int("ways", 0));
  cfg.write_allocate =
      cli.has("no-allocate") ? false : paper_write_allocate(cfg.protocol, cfg.size_words);
  cfg.l2.size_words = static_cast<u32>(cli.get_int("l2", 0));
  cfg.l2.ways = static_cast<u32>(cli.get_int("l2-ways", 8));
  cfg.l2.inclusion = cli.has("l2-noninclusive") ? L2Config::Inclusion::NonInclusive
                                                : L2Config::Inclusion::Inclusive;
  // Both fill latencies default to 0 (the paper model: everything
  // folded into the bus service time) so neither level looks slower
  // than the other unless the user models latency explicitly — pass
  // BOTH --l2-hit and --mem-extra, with --l2-hit the smaller.
  cfg.l2.hit_extra_cycles = static_cast<u32>(cli.get_int("l2-hit", 0));
  return cfg;
}

void print_l2_stats(const CacheConfig& cfg, const TrafficStats& s) {
  if (!cfg.l2.enabled()) return;
  std::printf("  L2: %u words, %s, %s\n", cfg.l2.size_words,
              cfg.l2.ways ? (std::to_string(cfg.l2.ways) + "-way").c_str()
                          : "fully-associative",
              inclusion_name(cfg.l2.inclusion).c_str());
  std::printf("    L2 miss ratio  %.4f  (%llu hits / %llu misses)\n",
              s.l2_miss_ratio(), (unsigned long long)s.l2_hits,
              (unsigned long long)s.l2_misses);
  std::printf("    memory words   %llu  (fetch %llu, writeback %llu, word %llu)"
              "  ratio %.4f\n",
              (unsigned long long)s.mem_words(),
              (unsigned long long)s.mem_fetch_words,
              (unsigned long long)s.mem_writeback_words,
              (unsigned long long)s.mem_word_writes, s.mem_traffic_ratio());
  if (s.l2_back_invalidations)
    std::printf("    back-invalidations %llu  (%llu dirty-flush words)\n",
                (unsigned long long)s.l2_back_invalidations,
                (unsigned long long)s.l2_back_inval_flush_words);
}

/// Fault plan from --enable-faults + --fault '<json>' (the server's
/// plan format, including the checkpoint crash/corruption sites).
std::unique_ptr<FaultInjector> faults_from_cli(const Cli& cli) {
  if (!cli.has("fault")) return nullptr;
  if (!cli.has("enable-faults"))
    fail("fault injection is disabled (pass --enable-faults)");
  return std::make_unique<FaultInjector>(
      FaultPlan::from_json(json_parse(cli.get("fault", "{}"))));
}

/// Replays chunks [start, n) through `sim`, publishing a checkpoint
/// frame every `every` chunk boundaries (none after the final chunk —
/// the run is done). Progress lines all start with "checkpoint".
template <typename Sim>
void replay_checkpointed(Sim& sim, const ChunkedTrace& t, u64 start, u64 key,
                         bool timed, CheckpointWriter* writer, u64 every,
                         FaultInjector* faults) {
  for (std::size_t i = start; i < t.num_chunks(); ++i) {
    if (faults) faults->on_chunk(i);
    const std::vector<u64>& c = t.chunk(i);
    sim.replay(c.data(), c.size());
    if (writer && every && (i + 1) % every == 0 && i + 1 < t.num_chunks()) {
      CheckpointMeta meta;
      meta.config_hash = key;
      meta.chunk_index = i + 1;
      meta.timed = timed;
      if constexpr (std::is_same_v<Sim, TimedReplay>)
        meta.refs_done = sim.traffic().refs;
      else
        meta.refs_done = sim.stats().refs;
      writer->publish(checkpoint_serialize(meta, sim), faults);
      std::printf("checkpoint: wrote %s at chunk %llu/%llu\n",
                  writer->path().c_str(), (unsigned long long)(i + 1),
                  (unsigned long long)t.num_chunks());
      std::fflush(stdout);
    }
  }
}

/// Resume preamble shared by replay/time: returns the restored
/// simulator (or null for a clean start) and the chunk to start from.
std::optional<RestoredReplay> try_resume(const Cli& cli,
                                         const std::string& ckpt_path,
                                         const CacheConfig& cfg, unsigned pes,
                                         const TimingParams* tp, u64 key,
                                         std::size_t num_chunks) {
  if (ckpt_path.empty() || !cli.has("resume")) return std::nullopt;
  try {
    std::optional<ResumeOutcome> res =
        checkpoint_resume(ckpt_path, cfg, pes, DirRep::Auto, tp, key);
    if (!res) {
      std::printf("checkpoint: none found at %s; starting clean\n",
                  ckpt_path.c_str());
      return std::nullopt;
    }
    for (const std::string& e : res->errors)
      std::printf("checkpoint: rejected %s\n", e.c_str());
    std::printf("checkpoint: resumed from %s at chunk %llu/%llu\n",
                res->source.c_str(),
                (unsigned long long)res->restored.meta.chunk_index,
                (unsigned long long)num_chunks);
    return std::move(res->restored);
  } catch (const Error& e) {
    // Every candidate was damaged: a corrupt checkpoint costs work,
    // never correctness — fall back to a clean run.
    std::printf("checkpoint: %s; starting clean\n", e.what());
    return std::nullopt;
  }
}

/// Engine resource budgets from --max-heap-mb / --max-steps (0 = off).
ResourceLimits limits_from_cli(const Cli& cli) {
  ResourceLimits lim;
  i64 mb = cli.get_int("max-heap-mb", 0);
  if (mb < 0) fail("--max-heap-mb must be non-negative");
  lim.max_heap_words = static_cast<u64>(mb) * (1024 * 1024 / 8);
  i64 steps = cli.get_int("max-steps", 0);
  if (steps < 0) fail("--max-steps must be non-negative");
  lim.max_steps = static_cast<u64>(steps);
  return lim;
}

/// Deadline token from --timeout-ms; nullopt when the flag is absent.
std::optional<CancelToken> timeout_from_cli(const Cli& cli) {
  i64 ms = cli.get_int("timeout-ms", 0);
  if (ms <= 0) return std::nullopt;
  return CancelToken::with_deadline(std::chrono::milliseconds(ms));
}

/// The engine-side (gen_*) slice of --enable-faults --fault '<json>'.
EngineFaults engine_faults_from_cli(const Cli& cli) {
  if (!cli.has("fault")) return {};
  if (!cli.has("enable-faults"))
    fail("fault injection is disabled (pass --enable-faults)");
  return FaultPlan::from_json(json_parse(cli.get("fault", "{}"))).engine_faults();
}

int cmd_record(const Cli& cli) {
  std::string bench = cli.get("bench", "qsort");
  unsigned pes = check_pes(static_cast<unsigned>(cli.get_int("pes", 4)));
  std::string out = cli.get("out", bench + ".trc");
  BenchScale scale = cli.get("scale", "small") == "paper" ? BenchScale::Paper
                                                          : BenchScale::Small;
  std::optional<CancelToken> deadline = timeout_from_cli(cli);
  // Chunks stream straight from the emulator to the file: recording a
  // multi-million-reference trace needs O(chunk) memory.
  FileTraceSink sink(out, /*busy_only=*/true);
  run_into(bench_program(bench, scale), pes, /*strip=*/false, &sink,
           /*max_solutions=*/1, limits_from_cli(cli), engine_faults_from_cli(cli),
           deadline ? &*deadline : nullptr);
  sink.close();
  std::printf("wrote %llu references to %s (recorded on %u PEs)\n",
              (unsigned long long)sink.written(), out.c_str(), sink.counts().pes());
  return 0;
}

/// Runs a benchmark without recording a trace: the governed-execution
/// front end (budgets, timeout, engine faults) plus a RunStats summary.
int cmd_run(const Cli& cli) {
  std::string bench = cli.get("bench", "qsort");
  unsigned pes = check_pes(static_cast<unsigned>(cli.get_int("pes", 1)));
  BenchScale scale = cli.get("scale", "small") == "paper" ? BenchScale::Paper
                                                          : BenchScale::Small;
  unsigned sols = static_cast<unsigned>(cli.get_int("solutions", 1));
  std::optional<CancelToken> deadline = timeout_from_cli(cli);
  RunResult res = run_into(bench_program(bench, scale), pes,
                           /*strip=*/cli.has("wam"), /*sink=*/nullptr, sols,
                           limits_from_cli(cli), engine_faults_from_cli(cli),
                           deadline ? &*deadline : nullptr);
  const RunStats& s = res.stats;
  std::printf("%s (%s): %llu solution(s) on %u PEs%s\n", bench.c_str(),
              scale == BenchScale::Paper ? "paper" : "small",
              (unsigned long long)s.solutions, pes,
              cli.has("wam") ? " [sequential WAM]" : "");
  std::printf("  instructions  %llu\n", (unsigned long long)s.instructions);
  std::printf("  inferences    %llu\n", (unsigned long long)s.calls);
  std::printf("  cycles        %llu\n", (unsigned long long)s.cycles);
  std::printf("  references    %llu  (busy %llu)\n",
              (unsigned long long)s.refs.total, (unsigned long long)s.refs.busy);
  std::printf("  high water    heap %llu / local %llu / control %llu / "
              "trail %llu words\n",
              (unsigned long long)s.high_water[static_cast<std::size_t>(Area::Heap)],
              (unsigned long long)s.high_water[static_cast<std::size_t>(Area::Local)],
              (unsigned long long)s.high_water[static_cast<std::size_t>(Area::Control)],
              (unsigned long long)s.high_water[static_cast<std::size_t>(Area::Trail)]);
  return 0;
}

int cmd_stats(const Cli& cli) {
  // One validated load builds all the metadata (counts, PE span);
  // nothing below rescans the stream.
  std::shared_ptr<const ChunkedTrace> t =
      load_chunked_trace(cli.positional().at(1));
  const RefCounts& c = t->counts();
  std::printf("references: %llu  (reads %llu / writes %llu)\n",
              (unsigned long long)c.total, (unsigned long long)c.reads,
              (unsigned long long)c.writes);
  TextTable by_area("by area");
  by_area.header({"area", "refs", "share"});
  for (std::size_t a = 0; a < kAreaCount; ++a) {
    if (!c.by_area[a]) continue;
    by_area.row({std::string(area_name(static_cast<Area>(a))),
                 std::to_string(c.by_area[a]),
                 fmt_pct(double(c.by_area[a]) / double(c.total), 1)});
  }
  std::fputs(by_area.str().c_str(), stdout);
  TextTable by_class("by object class (Table 1)");
  by_class.header({"class", "refs", "locality"});
  for (std::size_t k = 0; k < kObjClassCount; ++k) {
    if (!c.by_class[k]) continue;
    ObjClass oc = static_cast<ObjClass>(k);
    by_class.row({std::string(obj_class_name(oc)), std::to_string(c.by_class[k]),
                  std::string(locality_name(traits_of(oc).locality))});
  }
  std::fputs(by_class.str().c_str(), stdout);
  std::printf("PEs present: %u\n", t->num_pes());
  return 0;
}

int cmd_replay(const Cli& cli) {
  std::shared_ptr<const ChunkedTrace> t =
      load_chunked_trace(cli.positional().at(1));
  CacheConfig cfg = config_from_cli(cli);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", t->num_pes())));
  std::unique_ptr<FaultInjector> faults = faults_from_cli(cli);
  std::string ckpt = cli.get("checkpoint", "");
  u64 every = static_cast<u64>(cli.get_int("checkpoint-every", 16));
  u64 key = replay_config_hash(cfg, pes, resolve_wide(DirRep::Auto, pes),
                               trace_fingerprint(*t));

  std::unique_ptr<HierCacheSim> sim;
  u64 start = 0;
  if (std::optional<RestoredReplay> r =
          try_resume(cli, ckpt, cfg, pes, nullptr, key, t->num_chunks())) {
    sim = std::move(r->sim);
    start = r->meta.chunk_index;
  } else {
    sim = std::make_unique<HierCacheSim>(cfg, pes);
  }
  std::optional<CheckpointWriter> writer;
  if (!ckpt.empty()) writer.emplace(ckpt);
  replay_checkpointed(*sim, *t, start, key, /*timed=*/false,
                      writer ? &*writer : nullptr, every, faults.get());
  const TrafficStats& s = sim->stats();
  std::printf("%s, %u words, %u-word lines, %s, %u PEs\n",
              protocol_name(cfg.protocol).c_str(), cfg.size_words, cfg.line_words,
              cfg.write_allocate ? "write-allocate" : "no-write-allocate", pes);
  std::printf("  traffic ratio  %.4f\n", s.traffic_ratio());
  std::printf("  miss ratio     %.4f\n", s.miss_ratio());
  std::printf("  bus words      %llu  (fetch %llu, writeback %llu, through %llu,\n"
              "                  invalidations %llu, updates %llu, flush %llu)\n",
              (unsigned long long)s.bus_words, (unsigned long long)s.fetch_words,
              (unsigned long long)s.writeback_words,
              (unsigned long long)s.writethrough_words,
              (unsigned long long)s.invalidations, (unsigned long long)s.update_words,
              (unsigned long long)s.flush_words);
  print_l2_stats(cfg, s);
  if (s.coherence_violations)
    std::printf("  COHERENCE VIOLATIONS: %llu\n",
                (unsigned long long)s.coherence_violations);
  return 0;
}

int cmd_time(const Cli& cli) {
  std::shared_ptr<const ChunkedTrace> t =
      load_chunked_trace(cli.positional().at(1));
  CacheConfig cfg = config_from_cli(cli);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", t->num_pes())));
  TimingParams tp;
  tp.cycles_per_ref = static_cast<u32>(cli.get_int("cpr", 1));
  tp.bus_service_cycles = static_cast<u32>(cli.get_int("service", 1));
  tp.interleave = static_cast<u32>(cli.get_int("interleave", 2));
  tp.write_buffer_depth = static_cast<u32>(cli.get_int("wbuf", 4));
  tp.mem_extra_cycles = static_cast<u32>(cli.get_int("mem-extra", 0));

  std::unique_ptr<FaultInjector> faults = faults_from_cli(cli);
  std::string ckpt = cli.get("checkpoint", "");
  u64 every = static_cast<u64>(cli.get_int("checkpoint-every", 16));
  u64 key = timed_config_hash(cfg, pes, resolve_wide(DirRep::Auto, pes), tp,
                              trace_fingerprint(*t));

  std::unique_ptr<TimedReplay> simp;
  u64 start = 0;
  if (std::optional<RestoredReplay> r =
          try_resume(cli, ckpt, cfg, pes, &tp, key, t->num_chunks())) {
    simp = std::move(r->timed);
    start = r->meta.chunk_index;
  } else {
    simp = std::make_unique<TimedReplay>(cfg, pes, tp);
  }
  std::optional<CheckpointWriter> writer;
  if (!ckpt.empty()) writer.emplace(ckpt);
  replay_checkpointed(*simp, *t, start, key, /*timed=*/true,
                      writer ? &*writer : nullptr, every, faults.get());
  TimedReplay& sim = *simp;
  TimingStats ts = sim.timing();

  std::printf("%s, %u words, %u-word lines, %u PEs; bus %u cycle(s)/word, "
              "%u-way interleave, %u-deep write buffers\n",
              protocol_name(cfg.protocol).c_str(), cfg.size_words, cfg.line_words,
              pes, tp.bus_service_cycles, tp.interleave, tp.write_buffer_depth);
  std::printf("  traffic ratio   %.4f   miss ratio %.4f\n",
              sim.traffic().traffic_ratio(), sim.traffic().miss_ratio());
  std::printf("  makespan        %llu cycles\n", (unsigned long long)ts.makespan);
  std::printf("  speedup         x%.2f  (efficiency %.3f)\n", ts.speedup(),
              ts.efficiency());
  std::printf("  bus utilization %.3f  (%llu busy cycles, %llu transactions%s)\n",
              ts.bus_utilization(), (unsigned long long)ts.bus_busy_cycles,
              (unsigned long long)ts.bus_transactions,
              ts.saturated() ? ", SATURATED" : "");
  std::printf("  demand fills    cache %llu / L2 %llu / memory %llu\n",
              (unsigned long long)ts.cache_fills,
              (unsigned long long)ts.l2_fills, (unsigned long long)ts.mem_fills);
  print_l2_stats(cfg, sim.traffic());

  TextTable per_pe("per PE");
  per_pe.header({"PE", "refs", "busy cycles", "stall cycles", "stall %", "retired at"});
  for (unsigned pe = 0; pe < ts.pe.size(); ++pe) {
    const PeTiming& p = ts.pe[pe];
    double denom = static_cast<double>(p.busy_cycles + p.stall_cycles);
    per_pe.row({std::to_string(pe), std::to_string(p.refs),
                std::to_string(p.busy_cycles), std::to_string(p.stall_cycles),
                denom > 0 ? fmt_pct(static_cast<double>(p.stall_cycles) / denom, 1)
                          : "n/a",
                std::to_string(p.clock)});
  }
  std::fputs(per_pe.str().c_str(), stdout);

  BusEstimate e =
      bus_contention(pes, sim.traffic().traffic_ratio(), BusParams{tp.effective_service()});
  std::printf("analytic M/D/1 at the same traffic ratio: speedup x%.2f, "
              "efficiency %.3f, utilization %.3f\n",
              e.aggregate_speedup, e.pe_efficiency, e.utilization);
  return 0;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int cmd_sweep(const Cli& cli) {
  std::shared_ptr<const ChunkedTrace> t =
      load_chunked_trace(cli.positional().at(1), /*busy_only=*/true);
  unsigned pes =
      check_pes(static_cast<unsigned>(cli.get_int("pes", t->num_pes())));
  u32 line = static_cast<u32>(cli.get_int("line", 4));

  std::vector<SweepPoint> points;
  for (const std::string& pname :
       split_list(cli.get("protocols", "wt,broadcast,update,hybrid"))) {
    Protocol p = protocol_from_name(pname);
    for (const std::string& sz : split_list(cli.get("sizes", "256,512,1024,2048"))) {
      u32 size = static_cast<u32>(std::stoul(sz));
      if (size % line)
        fail("sweep size " + sz + " is not a multiple of the line size");
      SweepPoint pt;
      pt.cfg = paper_cache_config(p, size);
      pt.cfg.line_words = line;
      pt.num_pes = pes;
      pt.chunks = t.get();
      pt.label = static_cast<int>(points.size());
      points.push_back(pt);
    }
  }

  // The journal is keyed to the exact point list and trace, so resuming
  // with different flags is rejected instead of mixing results.
  std::optional<SweepJournal> journal;
  if (cli.has("journal")) {
    journal.emplace(cli.get("journal", "sweep.journal"),
                    sweep_config_hash(points, trace_fingerprint(*t)));
    std::printf("journal: %s holds %zu of %zu points%s\n",
                journal->path().c_str(), journal->done_count(), points.size(),
                journal->torn_records_dropped()
                    ? (" (" + std::to_string(journal->torn_records_dropped()) +
                       " torn record(s) dropped)")
                          .c_str()
                    : "");
  }

  ThreadPool pool(static_cast<unsigned>(cli.get_int("threads", 4)));
  std::vector<SweepResult> results =
      run_sweep(pool, points, nullptr, journal ? &*journal : nullptr);

  TextTable table("sweep (" + std::to_string(pes) + " PEs)");
  table.header({"protocol", "size", "traffic ratio", "miss ratio", "bus words"});
  for (const SweepResult& r : results) {
    char tr[32], mr[32];
    std::snprintf(tr, sizeof tr, "%.4f", r.stats.traffic_ratio());
    std::snprintf(mr, sizeof mr, "%.4f", r.stats.miss_ratio());
    table.row({protocol_name(r.point.cfg.protocol),
               std::to_string(r.point.cfg.size_words), tr, mr,
               std::to_string(r.stats.bus_words)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_golden(const Cli& cli) {
  std::string dir = cli.get("dir", golden_dir());
  std::vector<std::string> benches;
  if (cli.has("bench")) benches.push_back(cli.get("bench", "qsort"));
  else benches = small_bench_names();
  bool update = cli.has("update");
  if (update) std::filesystem::create_directories(dir);

  int mismatched = 0;
  for (const std::string& bench : benches) {
    std::string path = dir + "/" + bench + ".json";
    std::vector<GoldenEntry> live = golden_compute(bench);
    if (update) {
      write_text_file(path, golden_to_json(bench, live));
      std::printf("wrote %s (%zu entries)\n", path.c_str(), live.size());
      continue;
    }
    std::vector<GoldenEntry> golden = golden_from_json(read_text_file(path));
    std::vector<std::string> diff = golden_diff(golden, live);
    if (diff.empty()) {
      std::printf("%-8s OK (%zu entries)\n", bench.c_str(), golden.size());
    } else {
      ++mismatched;
      std::printf("%-8s DRIFTED (%zu mismatching lines):\n", bench.c_str(),
                  diff.size());
      for (const std::string& d : diff) std::printf("  %s\n", d.c_str());
    }
  }
  if (mismatched)
    std::printf("golden corpus drifted; regenerate with `rapwam_trace golden "
                "--update` if intentional\n");
  return mismatched ? 1 : 0;
}

// The signal handler may only touch async-signal-safe machinery;
// Server::request_stop() is exactly that (a self-pipe write), and the
// drain itself runs in cmd_serve's normal context once accept wakes.
Server* g_server = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_server) g_server->request_stop();
}

int cmd_serve(const Cli& cli) {
  Endpoint ep = Endpoint::parse(cli.get("socket", "unix:/tmp/rapwam.sock"));
  ServiceConfig cfg;
  cfg.workers = static_cast<unsigned>(cli.get_int("workers", 4));
  cfg.queue_limit = static_cast<std::size_t>(cli.get_int("queue", 16));
  cfg.default_deadline_ms = static_cast<u32>(cli.get_int("deadline", 0));
  cfg.enable_faults = cli.has("enable-faults");

  Server server(ep, cfg);
  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("rapwam_trace serving on %s (%u workers, queue %zu%s)\n",
              server.endpoint().str().c_str(), cfg.workers, cfg.queue_limit,
              cfg.enable_faults ? ", FAULT INJECTION ENABLED" : "");
  std::fflush(stdout);
  server.run();  // returns after a signal or `shutdown` request + drain

  // Flush final stats: the drain's last act, and what the CI smoke
  // test greps for.
  ServiceCounters c = server.service().counters();
  std::printf("drained: received %llu, completed %llu, failed %llu, "
              "shed %llu, rejected %llu, cancelled %llu, faults %llu, "
              "checkpoints %llu, resumes %llu, chunks skipped %llu, "
              "corrupt checkpoints rejected %llu\n",
              (unsigned long long)c.received, (unsigned long long)c.completed,
              (unsigned long long)c.failed, (unsigned long long)c.shed,
              (unsigned long long)c.rejected, (unsigned long long)c.cancelled,
              (unsigned long long)c.faults_injected,
              (unsigned long long)c.checkpoints_written,
              (unsigned long long)c.resumes,
              (unsigned long long)c.resume_chunks_skipped,
              (unsigned long long)c.corrupt_checkpoints_rejected);
  g_server = nullptr;
  return 0;
}

int cmd_request(const Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: rapwam_trace request '<json>' --socket SPEC\n");
    return 2;
  }
  Endpoint ep = Endpoint::parse(cli.get("socket", "unix:/tmp/rapwam.sock"));
  ClientOptions opt;
  opt.timeout_ms = static_cast<int>(cli.get_int("timeout", 10000));
  opt.attempts = static_cast<int>(cli.get_int("attempts", 5));
  opt.jitter_seed = static_cast<u64>(cli.get_int("seed", 1));
  ClientOutcome out = request_with_retry(ep, cli.positional().at(1), opt);
  if (out.response.ok) {
    std::printf("%s\n", json_write(out.response.result).c_str());
    return 0;
  }
  std::fprintf(stderr, "error (%s): %s\n", out.response.code.c_str(),
               out.response.message.c_str());
  return 1;
}

int cmd_dump(const Cli& cli) {
  std::vector<u64> t = load_trace(cli.positional().at(1));
  i64 head = cli.get_int("head", 20);
  for (i64 i = 0; i < head && i < static_cast<i64>(t.size()); ++i) {
    MemRef r = MemRef::unpack(t[static_cast<std::size_t>(i)]);
    std::printf("%6lld  pe%-2u %c %-18s %#llx\n", (long long)i, unsigned(r.pe),
                r.write ? 'W' : 'R',
                std::string(obj_class_name(r.cls)).c_str(),
                (unsigned long long)r.addr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) {
      std::puts(
          "usage: rapwam_trace record|run|stats|replay|time|sweep|dump|golden|"
          "serve|request ... (see source header)");
      return 2;
    }
    const std::string& cmd = cli.positional()[0];
    if (cmd == "record") return cmd_record(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "replay") return cmd_replay(cli);
    if (cmd == "time") return cmd_time(cli);
    if (cmd == "sweep") return cmd_sweep(cli);
    if (cmd == "dump") return cmd_dump(cli);
    if (cmd == "golden") return cmd_golden(cli);
    if (cmd == "serve") return cmd_serve(cli);
    if (cmd == "request") return cmd_request(cli);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const ResourceExhaustedError& e) {
    // Structured budget trip: name the budget so scripts can branch on
    // it without parsing the prose.
    std::fprintf(stderr, "error: resource budget '%s' tripped: %s\n",
                 e.resource().c_str(), e.what());
    return 1;
  } catch (const CancelledError& e) {
    std::fprintf(stderr, "error: %s: %s\n",
                 e.deadline_exceeded() ? "deadline_exceeded" : "cancelled",
                 e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
